package device

import (
	"bytes"
	"encoding/binary"
	"testing"

	"fluidicl/internal/sim"
	"fluidicl/internal/vm"
)

// TestParallelLaunchDeterministicUnderAborts runs the same mid-abort launch
// with workers=1 (the reference sequential path) and workers=8 (speculative
// waves) and requires identical virtual times, counters and memory — with
// entry skips, mid-flight aborts and rollbacks all landing mid-launch.
func TestParallelLaunchDeterministicUnderAborts(t *testing.T) {
	k := vm.MustCompile(`
__kernel void work(__global float* a, __global float* b, int m) {
    int i = get_global_id(0);
    float s = b[i];
    for (int j = 0; j < m; j++) { s += 1.0f; }
    a[i] = s + 1.0f;
    b[i] = a[i] * 0.5f;
}
`, "work")
	cfg := TeslaC2070()
	cfg.ComputeUnits = 2
	cfg.Occupancy = 2
	n := 16 * 32 // 16 work-groups of 32

	mkBufs := func() ([]byte, []byte) {
		a := make([]byte, 4*n)
		b := make([]byte, 4*n)
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint32(b[4*i:], uint32(i)) // denormal-ish noise is fine
		}
		return a, b
	}

	// Probe the abort-free launch duration to place status updates mid-run.
	var total sim.Time
	{
		env := sim.NewEnv()
		d := New(env, cfg)
		q := d.NewQueue("app")
		a, b := mkBufs()
		l := &Launch{Kernel: k, ND: vm.NewNDRange1D(n, 32),
			Args: []vm.Arg{vm.BufArg(a), vm.BufArg(b), vm.IntArg(2000)}}
		q.Enqueue(l)
		env.Go("host", func(p *sim.Proc) { p.Wait(l.Done); total = p.Now() })
		env.Run()
		if l.Result.Err != nil {
			t.Fatal(l.Result.Err)
		}
	}

	run := func(workers int) (*LaunchResult, []byte, []byte, sim.Time) {
		vm.SetWorkers(workers)
		defer vm.SetWorkers(0)
		env := sim.NewEnv()
		d := New(env, cfg)
		q := d.NewQueue("app")
		a, b := mkBufs()
		// Two updates land mid-launch, completing groups from the top down —
		// some in-flight groups abort and roll back, later ones entry-skip.
		fa := &fakeAbort{env: env,
			times:    []sim.Time{0.3 * total, 0.6 * total},
			doneFrom: []int{12, 6},
		}
		l := &Launch{Kernel: k, ND: vm.NewNDRange1D(n, 32),
			Args:     []vm.Arg{vm.BufArg(a), vm.BufArg(b), vm.IntArg(2000)},
			Abort:    fa,
			MidAbort: true,
		}
		q.Enqueue(l)
		var end sim.Time
		env.Go("host", func(p *sim.Proc) { p.Wait(l.Done); end = p.Now() })
		env.Run()
		if l.Result.Err != nil {
			t.Fatalf("workers=%d: %v", workers, l.Result.Err)
		}
		return l.Result, a, b, end
	}

	seqRes, seqA, seqB, seqEnd := run(1)
	parRes, parA, parB, parEnd := run(8)

	if seqEnd != parEnd {
		t.Fatalf("virtual completion time differs: seq=%v par=%v", seqEnd, parEnd)
	}
	if seqRes.Executed != parRes.Executed || seqRes.Skipped != parRes.Skipped || seqRes.Aborted != parRes.Aborted {
		t.Fatalf("counters differ: seq exec/skip/abort=%d/%d/%d par=%d/%d/%d",
			seqRes.Executed, seqRes.Skipped, seqRes.Aborted,
			parRes.Executed, parRes.Skipped, parRes.Aborted)
	}
	if seqRes.Stats != parRes.Stats {
		t.Fatalf("stats differ:\nseq=%+v\npar=%+v", seqRes.Stats, parRes.Stats)
	}
	if !bytes.Equal(seqA, parA) || !bytes.Equal(seqB, parB) {
		t.Fatal("buffers differ between workers=1 and workers=8")
	}
	if seqRes.Aborted == 0 && seqRes.Skipped == 0 {
		t.Fatal("test schedule produced no aborts or skips; timings need adjusting")
	}
}
