package device

import (
	"fluidicl/internal/trace"
)

// registerTracks claims this device's recorder tracks: one compute lane and
// one for its host link. Registration order follows device construction
// order, which is deterministic, so track ids (and therefore trace bytes)
// are stable across runs.
func (d *Device) registerTracks(rec *trace.Recorder) {
	d.trk = rec.Track(d.Cfg.Name)
	d.linkTrk = rec.Track(d.Cfg.Name + " link")
}

// ensureTracks lazily registers tracks for devices built before the recorder
// was attached.
func (d *Device) ensureTracks(rec *trace.Recorder) {
	if d.trk < 0 {
		d.registerTracks(rec)
	}
}

// recordTransfer emits one completed link transfer: a contention span while
// the command waited for the link (if any) followed by the wire-time span.
// t0 = dequeue (wait start), t1 = link acquired, t2 = transfer complete.
func (d *Device) recordTransfer(rec *trace.Recorder, c *Transfer, t0, t1, t2 float64) {
	d.ensureTracks(rec)
	name := c.Label
	if name == "" {
		if c.ToDevice {
			name = "write"
		} else {
			name = "read"
		}
	}
	if t1 > t0 {
		rec.Span(d.linkTrk, "wait:"+name, t0, t1, trace.KV{K: "bytes", V: int64(c.Bytes)})
	}
	rec.Span(d.linkTrk, name, t1, t2,
		trace.KV{K: "bytes", V: int64(c.Bytes)},
		trace.KV{K: "queued_ns", V: ns(t0 - c.enq)},
		trace.KV{K: "wait_ns", V: ns(t1 - t0)})
}

// recordLaunch emits one completed kernel launch span on the device's
// compute track, with the launch's work-group disposition as args.
func (d *Device) recordLaunch(rec *trace.Recorder, c *Launch, t0, t1 float64) {
	d.ensureTracks(rec)
	name := c.Label
	if name == "" {
		name = "kernel"
	}
	rec.Span(d.trk, name, t0, t1,
		trace.KV{K: "groups", V: int64(c.ND.LaunchGroups())},
		trace.KV{K: "executed", V: int64(c.Result.Executed)},
		trace.KV{K: "skipped", V: int64(c.Result.Skipped)},
		trace.KV{K: "aborted", V: int64(c.Result.Aborted)},
		trace.KV{K: "queued_ns", V: ns(t0 - c.enq)})
}

// recordCall emits a labeled queue call (device-internal copies).
func (d *Device) recordCall(rec *trace.Recorder, c *Call, t0, t1 float64) {
	d.ensureTracks(rec)
	rec.Span(d.trk, c.Label, t0, t1,
		trace.KV{K: "queued_ns", V: ns(t0 - c.enq)})
}

// recordAbort emits a mid-flight work-group abort (with store rollback) as
// an instant on the device's compute track.
func (d *Device) recordAbort(rec *trace.Recorder, fgid int, at float64) {
	d.ensureTracks(rec)
	rec.Instant(d.trk, "wg-abort", at, trace.KV{K: "fgid", V: int64(fgid)})
}

// ns converts virtual seconds to integer nanoseconds for trace args.
func ns(sec float64) int64 { return int64(sec * 1e9) }
