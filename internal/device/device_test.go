package device

import (
	"encoding/binary"
	"math"
	"testing"

	"fluidicl/internal/sim"
	"fluidicl/internal/vm"
)

func f32buf(vals ...float32) []byte {
	b := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(b[4*i:], math.Float32bits(v))
	}
	return b
}

func f32at(b []byte, i int) float32 {
	return math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:]))
}

func TestTransferTimingAndApply(t *testing.T) {
	env := sim.NewEnv()
	d := New(env, TeslaC2070())
	q := d.NewQueue("app")
	src := []byte{1, 2, 3, 4}
	dst := make([]byte, 4)
	var doneAt sim.Time
	tr := q.Enqueue(&Transfer{
		Bytes: len(src),
		Apply: func() { copy(dst, src) },
	}).(*Transfer)
	env.Go("host", func(p *sim.Proc) {
		p.Wait(tr.Done)
		doneAt = p.Now()
	})
	env.Run()
	want := d.Cfg.Link.TransferTime(4)
	if math.Abs(doneAt-want) > 1e-12 {
		t.Fatalf("transfer done at %v, want %v", doneAt, want)
	}
	if dst[0] != 1 || dst[3] != 4 {
		t.Fatal("Apply did not copy")
	}
}

func TestLinkContentionSerializes(t *testing.T) {
	env := sim.NewEnv()
	d := New(env, TeslaC2070())
	q1 := d.NewQueue("a")
	q2 := d.NewQueue("b")
	n := 1 << 20
	t1 := q1.Enqueue(&Transfer{Bytes: n}).(*Transfer)
	t2 := q2.Enqueue(&Transfer{Bytes: n}).(*Transfer)
	env.Go("host", func(p *sim.Proc) { p.WaitAll(t1.Done, t2.Done) })
	env.Run()
	one := d.Cfg.Link.TransferTime(n)
	// Two transfers on separate queues share the link: total ≈ 2x one.
	if got := env.Now(); math.Abs(got-2*one) > 1e-9 {
		t.Fatalf("two contended transfers took %v, want %v", got, 2*one)
	}
}

func TestInOrderQueue(t *testing.T) {
	env := sim.NewEnv()
	d := New(env, XeonW3550())
	q := d.NewQueue("app")
	var order []string
	q.Enqueue(&Call{Fn: func() { order = append(order, "a") }})
	q.Enqueue(&Transfer{Bytes: 100})
	c := q.Enqueue(&Call{Fn: func() { order = append(order, "b") }}).(*Call)
	env.Go("host", func(p *sim.Proc) { p.Wait(c.Done) })
	env.Run()
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("order = %v", order)
	}
}

const vaddSrc = `
__kernel void vadd(__global float* a, __global float* b, __global float* c, int n) {
    int i = get_global_id(0);
    if (i < n) { c[i] = a[i] + b[i]; }
}
`

func launchAndRun(t *testing.T, cfg Config, k *vm.Kernel, nd vm.NDRange, args []vm.Arg, mod func(*Launch)) (sim.Time, *LaunchResult) {
	t.Helper()
	env := sim.NewEnv()
	d := New(env, cfg)
	q := d.NewQueue("app")
	l := &Launch{Kernel: k, ND: nd, Args: args}
	if mod != nil {
		mod(l)
	}
	q.Enqueue(l)
	var doneAt sim.Time
	env.Go("host", func(p *sim.Proc) {
		p.Wait(l.Done)
		doneAt = p.Now()
	})
	env.Run()
	if l.Result.Err != nil {
		t.Fatal(l.Result.Err)
	}
	return doneAt, l.Result
}

func TestLaunchComputesResults(t *testing.T) {
	k := vm.MustCompile(vaddSrc, "vadd")
	n := 64
	a := make([]float32, n)
	b := make([]float32, n)
	for i := range a {
		a[i], b[i] = float32(i), float32(i)
	}
	ab, bb, cb := f32buf(a...), f32buf(b...), make([]byte, 4*n)
	_, res := launchAndRun(t, TeslaC2070(), k, vm.NewNDRange1D(n, 16),
		[]vm.Arg{vm.BufArg(ab), vm.BufArg(bb), vm.BufArg(cb), vm.IntArg(int64(n))}, nil)
	for i := 0; i < n; i++ {
		if f32at(cb, i) != float32(2*i) {
			t.Fatalf("c[%d] = %v", i, f32at(cb, i))
		}
	}
	if res.Executed != 4 || res.Skipped != 0 {
		t.Fatalf("executed=%d skipped=%d", res.Executed, res.Skipped)
	}
}

func TestMoreComputeUnitsFinishSooner(t *testing.T) {
	k := vm.MustCompile(`
__kernel void busy(__global float* a, int m) {
    int i = get_global_id(0);
    float s = 0.0f;
    for (int j = 0; j < m; j++) { s += 1.0f; }
    a[i] = s;
}
`, "busy")
	mk := func(cus int) sim.Time {
		cfg := TeslaC2070()
		cfg.ComputeUnits = cus
		n := 64 * 64
		buf := make([]byte, 4*n)
		at, _ := launchAndRun(t, cfg, k, vm.NewNDRange1D(n, 64),
			[]vm.Arg{vm.BufArg(buf), vm.IntArg(5000)}, nil)
		return at
	}
	one := mk(1)
	fourteen := mk(14)
	if fourteen >= one {
		t.Fatalf("14 CUs (%v) not faster than 1 CU (%v)", fourteen, one)
	}
	speedup := one / fourteen
	if speedup < 8 || speedup > 14.5 {
		t.Fatalf("speedup %v out of plausible range for 14 CUs", speedup)
	}
}

func TestGPUWinsOnCoalescedCPUWinsOnStrided(t *testing.T) {
	// Coalesced streaming kernel: adjacent work-items touch adjacent
	// elements — great for the GPU. Row-per-work-item reduction: each
	// work-item walks a row sequentially — great for the CPU cache model,
	// terrible for GPU coalescing.
	coal := vm.MustCompile(`
__kernel void c(__global float* a, __global float* out, int n) {
    int i = get_global_id(0);
    float s = 0.0f;
    for (int k = 0; k < n; k++) { s += a[k * n + i]; }
    out[i] = s;
}
`, "c")
	rowseq := vm.MustCompile(`
__kernel void r(__global float* a, __global float* out, int n) {
    int i = get_global_id(0);
    float s = 0.0f;
    for (int k = 0; k < n; k++) { s += a[i * n + k]; }
    out[i] = s;
}
`, "r")
	n := 256
	a := make([]byte, 4*n*n)
	run := func(cfg Config, k *vm.Kernel) sim.Time {
		out := make([]byte, 4*n)
		at, _ := launchAndRun(t, cfg, k, vm.NewNDRange1D(n, 32),
			[]vm.Arg{vm.BufArg(a), vm.BufArg(out), vm.IntArg(int64(n))}, nil)
		return at
	}
	gpuCoal, cpuCoal := run(TeslaC2070(), coal), run(XeonW3550(), coal)
	gpuRow, cpuRow := run(TeslaC2070(), rowseq), run(XeonW3550(), rowseq)
	if gpuCoal >= cpuCoal {
		t.Fatalf("coalesced kernel: GPU (%v) should beat CPU (%v)", gpuCoal, cpuCoal)
	}
	if cpuRow >= gpuRow {
		t.Fatalf("row-sequential kernel: CPU (%v) should beat GPU (%v)", cpuRow, gpuRow)
	}
}

// fakeAbort is a scripted AbortQuery: updates[i] says that at time T the
// groups with fgid >= DoneFrom became complete.
type fakeAbort struct {
	env      *sim.Env
	times    []sim.Time
	doneFrom []int
}

func (f *fakeAbort) DoneAt(fgid int, t sim.Time) bool {
	for i, ut := range f.times {
		if ut <= t && fgid >= f.doneFrom[i] {
			return true
		}
	}
	return false
}

func (f *fakeAbort) DoneSince(fgid int, after sim.Time) (sim.Time, bool) {
	now := f.env.Now()
	best, ok := sim.Time(0), false
	for i, ut := range f.times {
		if ut > after && ut <= now && fgid >= f.doneFrom[i] {
			if !ok || ut < best {
				best, ok = ut, true
			}
		}
	}
	return best, ok
}

func (f *fakeAbort) Changed() *sim.Event {
	now := f.env.Now()
	for _, ut := range f.times {
		if ut > now {
			ev := f.env.NewEvent()
			ev.FireAt(ut)
			return ev
		}
	}
	return nil
}

func TestEntryAbortSkipsCompletedGroups(t *testing.T) {
	k := vm.MustCompile(vaddSrc, "vadd")
	n := 256
	ab, bb, cb := make([]byte, 4*n), make([]byte, 4*n), make([]byte, 4*n)
	env := sim.NewEnv()
	cfg := TeslaC2070()
	cfg.ComputeUnits = 1 // serialize for a predictable schedule
	d := New(env, cfg)
	q := d.NewQueue("app")
	// Everything from group 8 on was "already complete" before launch.
	fa := &fakeAbort{env: env, times: []sim.Time{0}, doneFrom: []int{8}}
	l := &Launch{
		Kernel: k, ND: vm.NewNDRange1D(n, 16),
		Args:  []vm.Arg{vm.BufArg(ab), vm.BufArg(bb), vm.BufArg(cb), vm.IntArg(int64(n))},
		Abort: fa,
	}
	q.Enqueue(l)
	env.Go("host", func(p *sim.Proc) { p.Wait(l.Done) })
	env.Run()
	if l.Result.Executed != 8 || l.Result.Skipped != 8 {
		t.Fatalf("executed=%d skipped=%d, want 8/8", l.Result.Executed, l.Result.Skipped)
	}
}

func TestMidFlightAbortRollsBack(t *testing.T) {
	// One compute unit, long work-groups; a status update lands while
	// group 1 is executing and covers it: the group must abort and its
	// stores must be rolled back.
	k := vm.MustCompile(`
__kernel void slow(__global float* a, int m) {
    int i = get_global_id(0);
    float s = 0.0f;
    for (int j = 0; j < m; j++) { s += 1.0f; }
    a[i] = s + 1.0f;
}
`, "slow")
	env := sim.NewEnv()
	cfg := TeslaC2070()
	cfg.ComputeUnits = 1
	cfg.Occupancy = 1 // one work-group in flight: a predictable schedule
	cfg.KernelLaunchOverhead = 0
	cfg.WGOverhead = 0
	d := New(env, cfg)
	q := d.NewQueue("app")
	n := 2 * 32
	buf := make([]byte, 4*n)

	// Measure one group's duration first.
	probe := &Launch{Kernel: k, ND: vm.NewNDRange1D(32, 32),
		Args: []vm.Arg{vm.BufArg(make([]byte, 4*32)), vm.IntArg(50000)}}
	q.Enqueue(probe)
	var wgDur sim.Time
	env.Go("probe", func(p *sim.Proc) {
		p.Wait(probe.Done)
		wgDur = p.Now()
	})
	env.Run()

	env2 := sim.NewEnv()
	d2 := New(env2, cfg)
	q2 := d2.NewQueue("app")
	// Group 1 starts at ~wgDur; update at 1.5*wgDur covers fgid >= 1.
	fa := &fakeAbort{env: env2, times: []sim.Time{1.5 * wgDur}, doneFrom: []int{1}}
	l := &Launch{
		Kernel: k, ND: vm.NewNDRange1D(n, 32),
		Args:     []vm.Arg{vm.BufArg(buf), vm.IntArg(50000)},
		Abort:    fa,
		MidAbort: true,
	}
	q2.Enqueue(l)
	var doneAt sim.Time
	env2.Go("host", func(p *sim.Proc) {
		p.Wait(l.Done)
		doneAt = p.Now()
	})
	env2.Run()
	if l.Result.Err != nil {
		t.Fatal(l.Result.Err)
	}
	if l.Result.Aborted != 1 || l.Result.Executed != 1 {
		t.Fatalf("aborted=%d executed=%d, want 1/1", l.Result.Aborted, l.Result.Executed)
	}
	// Group 0's outputs present; group 1's rolled back.
	if f32at(buf, 0) == 0 {
		t.Fatal("group 0 output missing")
	}
	if f32at(buf, 32) != 0 {
		t.Fatalf("group 1 output = %v, want rolled back to 0", f32at(buf, 32))
	}
	// Completion soon after the abort, far sooner than two full groups.
	if doneAt >= 1.9*wgDur {
		t.Fatalf("launch took %v, want < %v (abort should cut group 1 short)", doneAt, 1.9*wgDur)
	}
}

func TestWithoutMidAbortGroupRunsToCompletion(t *testing.T) {
	k := vm.MustCompile(`
__kernel void slow(__global float* a, int m) {
    int i = get_global_id(0);
    float s = 0.0f;
    for (int j = 0; j < m; j++) { s += 1.0f; }
    a[i] = s;
}
`, "slow")
	env := sim.NewEnv()
	cfg := TeslaC2070()
	cfg.ComputeUnits = 1
	cfg.Occupancy = 1
	cfg.KernelLaunchOverhead = 0
	d := New(env, cfg)
	q := d.NewQueue("app")
	n := 2 * 32
	buf := make([]byte, 4*n)
	fa := &fakeAbort{env: env, times: []sim.Time{1e-9}, doneFrom: []int{1}}
	// The update lands essentially immediately, but after group 1 has been
	// checked at entry? No — entry check at start of group 1 happens after
	// group 0 completes, so group 1 IS skipped at entry. Use doneFrom such
	// that the update covers group 1 only after it started: with times
	// beyond group 0's duration this needs MidAbort; without MidAbort the
	// group must complete and keep its stores.
	_ = fa
	fa2 := &fakeAbort{env: env, times: []sim.Time{1e-7}, doneFrom: []int{1}}
	l := &Launch{
		Kernel: k, ND: vm.NewNDRange1D(n, 32),
		Args:     []vm.Arg{vm.BufArg(buf), vm.IntArg(20000)},
		Abort:    fa2,
		MidAbort: false,
	}
	q.Enqueue(l)
	env.Go("host", func(p *sim.Proc) { p.Wait(l.Done) })
	env.Run()
	// Group 1 was not yet covered when it started (update at 1e-7 s is
	// before group 0 finishes, so group 1 is skipped at entry instead).
	if l.Result.Skipped != 1 {
		t.Fatalf("skipped=%d, want 1 (entry check sees the update)", l.Result.Skipped)
	}
}

func TestCPUSplitSpeedsUpSmallLaunches(t *testing.T) {
	k := vm.MustCompile(`
__kernel void busy(__global float* a, int m) {
    int i = get_global_id(0);
    float s = 0.0f;
    for (int j = 0; j < m; j++) { s += 1.0f; }
    a[i] = s;
}
`, "busy")
	cfg := XeonW3550()
	n := 2 * 64 // 2 groups, 8 threads
	args := func() []vm.Arg {
		return []vm.Arg{vm.BufArg(make([]byte, 4*n)), vm.IntArg(30000)}
	}
	noSplit, _ := launchAndRun(t, cfg, k, vm.NewNDRange1D(n, 64), args(), nil)
	withSplit, _ := launchAndRun(t, cfg, k, vm.NewNDRange1D(n, 64), args(), func(l *Launch) { l.Split = true })
	if withSplit >= noSplit {
		t.Fatalf("split (%v) not faster than no split (%v)", withSplit, noSplit)
	}
	if noSplit/withSplit < 2 {
		t.Fatalf("split speedup %v too small for 2 groups on 8 threads", noSplit/withSplit)
	}
}

func TestWGTimeMonotonicInWork(t *testing.T) {
	cfg := TeslaC2070()
	small := vm.Stats{FloatOps: 1000, WarpTransactions: 10}
	big := vm.Stats{FloatOps: 100000, WarpTransactions: 1000}
	if cfg.WGTime(big, 1) <= cfg.WGTime(small, 1) {
		t.Fatal("WGTime not monotonic in work")
	}
	cpu := XeonW3550()
	seq := vm.Stats{GlobalLoads: 1000, SeqBytes: 4000}
	rnd := vm.Stats{GlobalLoads: 1000, RandBytes: 4000}
	if cpu.WGTime(rnd, 1) <= cpu.WGTime(seq, 1) {
		t.Fatal("random access should cost more than sequential on CPU")
	}
}

func TestLaunchErrorPropagates(t *testing.T) {
	k := vm.MustCompile(`__kernel void f(__global float* a) { a[get_global_id(0)] = 1.0f; }`, "f")
	env := sim.NewEnv()
	d := New(env, TeslaC2070())
	q := d.NewQueue("app")
	l := &Launch{Kernel: k, ND: vm.NewNDRange1D(64, 16), Args: []vm.Arg{vm.BufArg(make([]byte, 4))}}
	q.Enqueue(l)
	env.Go("host", func(p *sim.Proc) { p.Wait(l.Done) })
	env.Run()
	if l.Result.Err == nil {
		t.Fatal("out-of-bounds error not propagated")
	}
}

func TestOccupancyPreservesThroughput(t *testing.T) {
	// With a compute-bound kernel and plenty of work-groups, enabling
	// occupancy interleaving must not change total kernel time by much —
	// it only changes how many groups are simultaneously in flight.
	k := vm.MustCompile(`
__kernel void busy(__global float* a, int m) {
    int i = get_global_id(0);
    float s = 0.0f;
    for (int j = 0; j < m; j++) { s += 1.0f; }
    a[i] = s;
}
`, "busy")
	run := func(occ int) sim.Time {
		cfg := TeslaC2070()
		cfg.Occupancy = occ
		cfg.KernelLaunchOverhead = 0
		cfg.WGOverhead = 0
		n := 14 * 6 * 4 * 32 // plenty of whole waves either way
		at, _ := launchAndRun(t, cfg, k, vm.NewNDRange1D(n, 32),
			[]vm.Arg{vm.BufArg(make([]byte, 4*n)), vm.IntArg(2000)}, nil)
		return at
	}
	t1 := run(1)
	t6 := run(6)
	if ratio := t6 / t1; ratio < 0.95 || ratio > 1.05 {
		t.Fatalf("occupancy changed throughput: occ1=%v occ6=%v (ratio %.3f)", t1, t6, ratio)
	}
}

func TestOccupancyIncreasesInFlightAborts(t *testing.T) {
	// With many resident work-groups, a status update that lands while the
	// kernel runs can abort far more in-flight groups than with one
	// work-group per compute unit.
	k := vm.MustCompile(`
__kernel void busy(__global float* a, int m) {
    int i = get_global_id(0);
    float s = 0.0f;
    for (int j = 0; j < m; j++) { s += 1.0f; }
    a[i] = s;
}
`, "busy")
	run := func(occ int) int {
		env := sim.NewEnv()
		cfg := TeslaC2070()
		cfg.Occupancy = occ
		cfg.ComputeUnits = 4
		d := New(env, cfg)
		q := d.NewQueue("app")
		n := 64 * 32
		// Everything becomes "CPU-complete" shortly after launch.
		fa := &fakeAbort{env: env, times: []sim.Time{30e-6}, doneFrom: []int{0}}
		l := &Launch{
			Kernel: k, ND: vm.NewNDRange1D(n, 32),
			Args:     []vm.Arg{vm.BufArg(make([]byte, 4*n)), vm.IntArg(30000)},
			Abort:    fa,
			MidAbort: true,
		}
		q.Enqueue(l)
		env.Go("host", func(p *sim.Proc) { p.Wait(l.Done) })
		env.Run()
		if l.Result.Err != nil {
			t.Fatal(l.Result.Err)
		}
		return l.Result.Aborted
	}
	a1 := run(1)
	a6 := run(6)
	if a6 <= a1 {
		t.Fatalf("occupancy 6 aborted %d in-flight groups vs %d at occupancy 1; want more", a6, a1)
	}
}

func TestSmallLaunchNotPenalizedByOccupancy(t *testing.T) {
	// A launch with one work-group per compute unit must not be slowed by
	// the occupancy multiplier (nothing shares an SM).
	k := vm.MustCompile(`
__kernel void busy(__global float* a, int m) {
    int i = get_global_id(0);
    float s = 0.0f;
    for (int j = 0; j < m; j++) { s += 1.0f; }
    a[i] = s;
}
`, "busy")
	cfg := TeslaC2070()
	cfg.Occupancy = 6
	n := cfg.ComputeUnits * 32 // exactly one group per CU
	t6, _ := launchAndRun(t, cfg, k, vm.NewNDRange1D(n, 32),
		[]vm.Arg{vm.BufArg(make([]byte, 4*n)), vm.IntArg(2000)}, nil)
	cfg1 := cfg
	cfg1.Occupancy = 1
	t1, _ := launchAndRun(t, cfg1, k, vm.NewNDRange1D(n, 32),
		[]vm.Arg{vm.BufArg(make([]byte, 4*n)), vm.IntArg(2000)}, nil)
	if t6 != t1 {
		t.Fatalf("one-group-per-CU launch slowed by occupancy: %v vs %v", t6, t1)
	}
}

func TestCallDuration(t *testing.T) {
	env := sim.NewEnv()
	d := New(env, TeslaC2070())
	q := d.NewQueue("app")
	c := q.Enqueue(&Call{Duration: 5e-6}).(*Call)
	env.Go("host", func(p *sim.Proc) { p.Wait(c.Done) })
	env.Run()
	if env.Now() != 5e-6 {
		t.Fatalf("Call took %v, want 5us", env.Now())
	}
}

func TestTransferTimeModel(t *testing.T) {
	l := LinkConfig{LatencySec: 10e-6, BytesPerSec: 1e9}
	if got := l.TransferTime(0); got != 10e-6 {
		t.Fatalf("latency-only transfer = %v", got)
	}
	if got := l.TransferTime(1e9); got != 10e-6+1 {
		t.Fatalf("1GB transfer = %v", got)
	}
}

func TestKindString(t *testing.T) {
	if CPU.String() != "CPU" || GPU.String() != "GPU" {
		t.Fatal("Kind.String broken")
	}
}
