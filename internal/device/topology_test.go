package device

import (
	"math"
	"testing"

	"fluidicl/internal/sim"
)

func TestParseTopology(t *testing.T) {
	cases := []struct {
		spec  string
		n     int
		names []string
		buses []string
	}{
		{"cpu+gpu", 2, []string{"Xeon W3550 (simulated)", "Tesla C2070 (simulated)"}, []string{"", ""}},
		{"2cpu+2gpu", 4,
			[]string{"Xeon W3550 (simulated) #0", "Xeon W3550 (simulated) #1", "Tesla C2070 (simulated) #0", "Tesla C2070 (simulated) #1"},
			[]string{"", "", "", ""}},
		{"4gpu-bus", 4,
			[]string{"Tesla C2070 (simulated) #0", "Tesla C2070 (simulated) #1", "Tesla C2070 (simulated) #2", "Tesla C2070 (simulated) #3"},
			[]string{"bus0", "bus0", "bus0", "bus0"}},
		{"bigcpu+gt440+gpu", 3, nil, []string{"", "", ""}},
		{"gpu+gpu", 2, []string{"Tesla C2070 (simulated) #0", "Tesla C2070 (simulated) #1"}, nil},
	}
	for _, c := range cases {
		topo, err := ParseTopology(c.spec)
		if err != nil {
			t.Fatalf("%s: %v", c.spec, err)
		}
		if len(topo.Devices) != c.n {
			t.Fatalf("%s: %d devices, want %d", c.spec, len(topo.Devices), c.n)
		}
		for i, want := range c.names {
			if got := topo.Devices[i].Name; got != want {
				t.Fatalf("%s: device %d named %q, want %q", c.spec, i, got, want)
			}
		}
		for i, want := range c.buses {
			if got := topo.Links[i].Bus; got != want {
				t.Fatalf("%s: link %d on bus %q, want %q", c.spec, i, got, want)
			}
		}
	}
	for _, bad := range []string{"", "3", "cpu+tpu", "0cpu", "-bus"} {
		if _, err := ParseTopology(bad); err == nil {
			t.Fatalf("ParseTopology(%q) succeeded, want error", bad)
		}
	}
}

func TestTopologyPair(t *testing.T) {
	if _, _, ok := MustParseTopology("cpu+gpu").Pair(); !ok {
		t.Fatal("cpu+gpu should be the degenerate pair")
	}
	for _, spec := range []string{"gpu+gpu", "cpu+gpu-bus", "2cpu+2gpu", "gpu", "cpu+gpu+gpu"} {
		if _, _, ok := MustParseTopology(spec).Pair(); ok {
			t.Fatalf("%s should not be the degenerate pair", spec)
		}
	}
	// A latency/bandwidth override also disqualifies the twin fast path.
	topo := MustParseTopology("cpu+gpu")
	topo.Links[1].Latency = 1e-5
	if _, _, ok := topo.Pair(); ok {
		t.Fatal("overridden link should not be the degenerate pair")
	}
}

// busTopoTime runs one equal-size transfer per device of a two-GPU topology,
// started simultaneously, and returns the virtual completion time plus the
// meter's total link wait.
func busTopoTime(t *testing.T, spec string, bytes int) (sim.Time, float64) {
	t.Helper()
	env := sim.NewEnv()
	devs := MustParseTopology(spec).Build(env)
	var done []*sim.Event
	for _, d := range devs {
		tr := &Transfer{Bytes: bytes}
		d.NewQueue("app").Enqueue(tr)
		done = append(done, tr.Done)
	}
	env.Go("host", func(p *sim.Proc) { p.WaitAll(done...) })
	env.Run()
	wait := 0.0
	for _, d := range env.Meter.Summary().Devices {
		wait += d.LinkWait
	}
	return env.Now(), wait
}

// TestSharedBusSerializesAcrossDevices pins the topology contention model:
// the same two transfers that overlap on dedicated point-to-point links
// serialize when the devices share one bus, and the loser's wait shows up in
// the meter.
func TestSharedBusSerializesAcrossDevices(t *testing.T) {
	n := 1 << 20
	one := TeslaC2070().Link.TransferTime(n)

	p2p, p2pWait := busTopoTime(t, "2gpu", n)
	if math.Abs(p2p-one) > 1e-9 {
		t.Fatalf("point-to-point transfers took %v, want %v (full overlap)", p2p, one)
	}
	if p2pWait != 0 {
		t.Fatalf("point-to-point links recorded %v link wait, want 0", p2pWait)
	}

	bus, busWait := busTopoTime(t, "2gpu-bus", n)
	if math.Abs(bus-2*one) > 1e-9 {
		t.Fatalf("shared-bus transfers took %v, want %v (serialized)", bus, 2*one)
	}
	if busWait <= 0 {
		t.Fatal("shared-bus contention recorded no link wait")
	}
}

// TestTopologyLinkOverrides verifies per-link latency/bandwidth overrides
// reach the built device's transfer model.
func TestTopologyLinkOverrides(t *testing.T) {
	topo := MustParseTopology("2gpu")
	topo.Links[1].Latency = 1e-3
	topo.Links[1].BytesPerSec = 1e6
	env := sim.NewEnv()
	devs := topo.Build(env)
	n := 1 << 10
	fast := devs[0].Cfg.Link.TransferTime(n)
	slow := devs[1].Cfg.Link.TransferTime(n)
	want := 1e-3 + float64(n)/1e6
	if math.Abs(slow-want) > 1e-12 {
		t.Fatalf("overridden link transfer time %v, want %v", slow, want)
	}
	if slow <= fast {
		t.Fatal("overridden link should be slower than the stock link")
	}
}
