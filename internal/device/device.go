// Package device simulates the heterogeneous machine FluidiCL runs on: a
// discrete-memory GPU and a multi-core CPU OpenCL device, each with in-order
// command queues, connected to the host by links with latency and bandwidth.
//
// Kernels execute for real (package vm) one work-group at a time; the
// device's cost model converts each work-group's dynamic statistics into
// virtual seconds. The GPU model charges SIMT-width-parallel ALU time plus
// per-warp memory transactions (so column-strided access patterns are slow,
// as on real hardware); the CPU model charges serial per-thread ALU time
// plus a stride-sensitive cache model (so per-work-item sequential access is
// fast). This asymmetry is what makes different kernels favour different
// devices — the phenomenon FluidiCL exploits.
package device

import (
	"fmt"

	"fluidicl/internal/sim"
	"fluidicl/internal/vm"
)

// Kind distinguishes device models.
type Kind int

// Device kinds.
const (
	CPU Kind = iota
	GPU
)

func (k Kind) String() string {
	if k == CPU {
		return "CPU"
	}
	return "GPU"
}

// LinkConfig models the host<->device interconnect.
type LinkConfig struct {
	LatencySec  float64
	BytesPerSec float64
}

// TransferTime returns the modelled duration of moving n bytes.
func (l LinkConfig) TransferTime(n int) float64 {
	return l.LatencySec + float64(n)/l.BytesPerSec
}

// Config is a device cost model.
type Config struct {
	Name         string
	Kind         Kind
	ComputeUnits int // GPU: SMs; CPU: hardware threads

	// ALU model.
	ClockHz       float64
	LanesPerCU    int     // SIMT width (1 for CPU)
	IPC           float64 // ops per cycle per lane
	SpecialOpCost float64 // sqrt/exp/pow cost in plain-op units

	// GPU memory model: each per-warp transaction moves TxBytes at
	// MemBytesPerSec of per-compute-unit bandwidth.
	TxBytes        int
	MemBytesPerSec float64

	// CPU memory model: stride-classified bytes.
	SeqBytesPerSec  float64
	RandBytesPerSec float64

	// Occupancy is the number of work-groups resident per compute unit
	// (GPU SMs interleave many resident work-groups; each then progresses
	// at 1/Occupancy rate, keeping aggregate throughput unchanged). This
	// matters for FluidiCL: the more work-groups are in flight, the more
	// work the in-loop abort checks can cut short (§6.4). 0 means 1.
	Occupancy int

	// Overheads.
	KernelLaunchOverhead float64 // per enqueued kernel
	WGOverhead           float64 // per work-group dispatch
	SkipCost             float64 // launching a work-group that aborts at entry
	AbortNotice          float64 // delay for an in-loop check to observe a status change
	BarrierCost          float64 // per barrier crossing

	// CopyBytesPerSec is device-internal buffer-copy bandwidth.
	CopyBytesPerSec float64

	Link LinkConfig
}

// CopyTime returns the modelled duration of a device-internal copy.
func (c Config) CopyTime(n int) float64 {
	return 2e-6 + float64(n)/c.CopyBytesPerSec
}

// TeslaC2070 returns the GPU model used throughout the experiments,
// calibrated to the paper's NVidia Tesla C2070 (14 SMs, 32 lanes,
// 1.15 GHz, ~130 GB/s effective bandwidth, PCIe 2.0 x16).
func TeslaC2070() Config {
	return Config{
		Name:                 "Tesla C2070 (simulated)",
		Kind:                 GPU,
		ComputeUnits:         14,
		ClockHz:              1.15e9,
		LanesPerCU:           32,
		IPC:                  1.0,
		Occupancy:            6,
		SpecialOpCost:        4,
		TxBytes:              64,
		MemBytesPerSec:       9.2e9, // per SM; ~129 GB/s aggregate
		KernelLaunchOverhead: 6e-6,
		WGOverhead:           0.4e-6,
		SkipCost:             0.25e-6,
		AbortNotice:          2e-6,
		BarrierCost:          0.2e-6,
		CopyBytesPerSec:      80e9,
		Link:                 LinkConfig{LatencySec: 10e-6, BytesPerSec: 5.6e9},
	}
}

// XeonW3550 returns the CPU model, calibrated to the paper's quad-core
// Intel Xeon W3550 with hyper-threading (8 hardware threads) running the
// AMD APP CPU OpenCL runtime, which executes each work-group on one thread.
func XeonW3550() Config {
	return Config{
		Name:                 "Xeon W3550 (simulated)",
		Kind:                 CPU,
		ComputeUnits:         8,
		ClockHz:              3.07e9,
		LanesPerCU:           1,
		IPC:                  1.6, // 4 physical cores, 8 threads
		SpecialOpCost:        12,
		SeqBytesPerSec:       6.5e9,
		RandBytesPerSec:      0.9e9,
		KernelLaunchOverhead: 12e-6, // per (sub)kernel enqueue on the CPU runtime
		WGOverhead:           1.5e-6,
		SkipCost:             0.15e-6,
		AbortNotice:          2e-6,
		BarrierCost:          1e-6,
		CopyBytesPerSec:      8e9,
		// "Transfers" to the CPU OpenCL device are host-memory copies.
		Link: LinkConfig{LatencySec: 2e-6, BytesPerSec: 8e9},
	}
}

// GT440 returns a much weaker entry-level GPU model (2 SMs, narrow memory
// bus) — the "different machine" used by the portability experiment: on
// such a machine most kernels prefer the CPU, and a portable runtime must
// adapt without retuning.
func GT440() Config {
	c := TeslaC2070()
	c.Name = "GeForce GT 440 (simulated)"
	c.ComputeUnits = 2
	c.ClockHz = 0.81e9
	c.MemBytesPerSec = 7e9 // ~14 GB/s aggregate
	c.Link = LinkConfig{LatencySec: 12e-6, BytesPerSec: 3e9}
	return c
}

// XeonDual returns a dual-socket, 16-hardware-thread CPU model — a stronger
// host for the portability experiment.
func XeonDual() Config {
	c := XeonW3550()
	c.Name = "2x Xeon X5570 (simulated)"
	c.ComputeUnits = 16
	return c
}

// WGTime converts one work-group's dynamic stats into seconds on this
// device. split > 1 divides the time across that many otherwise-idle
// hardware threads (the CPU work-group splitting optimization, §6.3).
func (c Config) WGTime(st vm.Stats, split int) float64 {
	ops := float64(st.IntOps+st.FloatOps+st.Branches) + float64(st.SpecialOps)*c.SpecialOpCost
	var t float64
	switch c.Kind {
	case GPU:
		alu := ops / (float64(c.LanesPerCU) * c.IPC * c.ClockHz)
		alu += float64(st.LocalAccesses) / (float64(c.LanesPerCU) * c.ClockHz)
		mem := float64(st.WarpTransactions) * float64(c.TxBytes) / c.MemBytesPerSec
		if alu > mem {
			t = alu
		} else {
			t = mem
		}
	default:
		alu := ops / (c.IPC * c.ClockHz)
		mem := float64(st.SeqBytes)/c.SeqBytesPerSec + float64(st.RandBytes)/c.RandBytesPerSec
		mem += float64(st.LocalAccesses) * 4 / c.SeqBytesPerSec
		t = alu + mem
	}
	t += float64(st.Barriers) * c.BarrierCost
	if split > 1 {
		t = t/float64(split) + c.WGOverhead*float64(split-1)
	}
	return t + c.WGOverhead
}

// Device is a simulated compute device.
type Device struct {
	Env  *sim.Env
	Cfg  Config
	link *sim.Resource

	// memEpoch counts externally visible buffer mutations performed by this
	// device's queues outside work-group execution (transfer Apply hooks and
	// Call functions — the only places the runtime mutates buffers while a
	// launch is in progress). The speculative launch engine samples it to
	// detect that buffered results may have read stale memory. Plain field:
	// the simulation is cooperative, so queue processes never run while a
	// launch process is between samples.
	memEpoch uint64

	// Observability handles: mi is this device's index in env.Meter; trk and
	// linkTrk are recorder track ids for the device's compute lane and its
	// host link (-1 until registered).
	mi      int
	trk     int
	linkTrk int
}

// New creates a device in env with a dedicated point-to-point host link. If
// env.Trace is already set, the device registers its compute and link tracks
// now (so every device and link gets a track even if it stays idle);
// otherwise tracks are registered lazily on the first recorded event.
func New(env *sim.Env, cfg Config) *Device {
	return NewOnBus(env, cfg, nil)
}

// NewOnBus creates a device whose host link contends on the given shared bus
// resource: transfers on every device sharing the resource serialize, as on
// a PCIe switch or shared front-side bus (Topology.Build wires this up). A
// nil bus gives the device a dedicated point-to-point link, which is New's
// behavior and contends only with the device's own queued transfers.
func NewOnBus(env *sim.Env, cfg Config, bus *sim.Resource) *Device {
	link := bus
	if link == nil {
		link = sim.NewResource(env, 1)
	}
	d := &Device{Env: env, Cfg: cfg, link: link, trk: -1, linkTrk: -1}
	d.mi = env.Meter.AddDevice(cfg.Name, cfg.Kind.String())
	if rec := env.Trace; rec != nil {
		d.registerTracks(rec)
	}
	return d
}

// MemEpoch returns the device's external-mutation counter; see Device.memEpoch.
func (d *Device) MemEpoch() uint64 { return d.memEpoch }

// AbortQuery lets the GPU launch executor ask whether a work-group has
// already been completed by the other device (FluidiCL supplies this; it is
// nil for ordinary launches).
type AbortQuery interface {
	// DoneAt reports whether flattened group fgid was complete on the other
	// device as of virtual time t (computed data and status had arrived).
	DoneAt(fgid int, t sim.Time) bool
	// DoneSince returns the earliest status-update time u with
	// after < u <= now that marks fgid complete.
	DoneSince(fgid int, after sim.Time) (sim.Time, bool)
	// Changed returns an event that fires at the next status update.
	Changed() *sim.Event
}

// LaunchResult reports a completed kernel launch.
type LaunchResult struct {
	Stats    vm.Stats
	Executed int // work-groups run to completion here
	Skipped  int // work-groups skipped by the entry abort check
	Aborted  int // work-groups aborted mid-flight by in-loop checks
	// Started flips as soon as the device begins the launch (after any
	// queued transfers ahead of it). FluidiCL uses it to decide whether a
	// CPU-did-all completion can return without waiting for a GPU kernel
	// that is still stuck behind its input upload.
	Started bool
	Err     error
}

// Command is one in-order queue entry.
type Command interface{ isCommand() }

// Transfer moves bytes over the device link; Apply runs at completion time
// (typically copying between host and device backing stores).
type Transfer struct {
	Bytes int
	Apply func()
	Done  *sim.Event
	// Label names the transfer in traces ("write", "read", "ship", ...);
	// ToDevice distinguishes host-to-device traffic from device-to-host.
	Label    string
	ToDevice bool

	enq sim.Time // enqueue timestamp, for queued-time trace args
}

func (*Transfer) isCommand() {}

// Launch executes a kernel over the launch slice of ND.
type Launch struct {
	Kernel *vm.Kernel
	ND     vm.NDRange
	Args   []vm.Arg
	// Abort, when non-nil, supplies the CPU-completion status for FluidiCL
	// GPU launches.
	Abort AbortQuery
	// MidAbort marks kernels compiled with in-loop abort checks: running
	// work-groups can stop when a status update lands mid-execution.
	MidAbort bool
	// Split allows the CPU work-group splitting optimization.
	Split bool
	// Backend selects the VM execution engine (interpreter or threaded
	// closures); both produce identical stats and therefore identical
	// virtual time.
	Backend vm.Backend
	Done    *sim.Event
	Result  *LaunchResult
	// Label names the launch in traces (normally the kernel name).
	Label string

	enq sim.Time
}

func (*Launch) isCommand() {}

// Call occupies the queue for Duration seconds, then runs Fn (markers,
// device-internal copies, bookkeeping).
type Call struct {
	Duration float64
	Fn       func()
	Done     *sim.Event
	// Label, when non-empty, records the call as a span in traces
	// (device-internal copies); unlabeled calls (markers, bookkeeping) are
	// not recorded.
	Label string

	enq sim.Time
}

func (*Call) isCommand() {}

// Queue is an in-order command queue served by its own simulation process.
type Queue struct {
	dev *Device
	q   *sim.Queue[Command]
}

// NewQueue creates and starts an in-order command queue.
func (d *Device) NewQueue(name string) *Queue {
	q := &Queue{dev: d, q: sim.NewQueue[Command](d.Env)}
	d.Env.Go(fmt.Sprintf("%s/%s", d.Cfg.Name, name), q.serve)
	return q
}

// Enqueue appends a command. If the command's Done event is nil, one is
// created; the (possibly updated) command is returned for waiting.
func (q *Queue) Enqueue(c Command) Command {
	switch c := c.(type) {
	case *Transfer:
		if c.Done == nil {
			c.Done = q.dev.Env.NewEvent()
		}
		c.enq = q.dev.Env.Now()
	case *Launch:
		if c.Done == nil {
			c.Done = q.dev.Env.NewEvent()
		}
		if c.Result == nil {
			c.Result = &LaunchResult{}
		}
		c.enq = q.dev.Env.Now()
	case *Call:
		if c.Done == nil {
			c.Done = q.dev.Env.NewEvent()
		}
		c.enq = q.dev.Env.Now()
	}
	q.q.Put(c)
	return c
}

// Close shuts the queue down after draining.
func (q *Queue) Close() { q.q.Close() }

func (q *Queue) serve(p *sim.Proc) {
	for {
		c, ok := q.q.Get(p)
		if !ok {
			return
		}
		switch c := c.(type) {
		case *Transfer:
			t0 := p.Now()
			q.dev.link.Acquire(p)
			t1 := p.Now()
			p.Sleep(q.dev.Cfg.Link.TransferTime(c.Bytes))
			if c.Apply != nil {
				c.Apply()
				q.dev.memEpoch++
			}
			q.dev.link.Release()
			t2 := p.Now()
			q.dev.Env.Meter.TransferEnd(q.dev.mi, t1-t0, t2-t1, c.Bytes, c.ToDevice, c.Label == "refresh")
			if rec := q.dev.Env.Trace; rec != nil {
				q.dev.recordTransfer(rec, c, t0, t1, t2)
			}
			c.Done.Fire()
		case *Launch:
			t0 := p.Now()
			q.dev.Env.Meter.LaunchBegin(q.dev.mi, t0)
			q.dev.runLaunch(p, c)
			t1 := p.Now()
			q.dev.Env.Meter.LaunchEnd(q.dev.mi, t0, t1,
				c.Result.Executed, c.Result.Skipped, c.Result.Aborted)
			if rec := q.dev.Env.Trace; rec != nil {
				q.dev.recordLaunch(rec, c, t0, t1)
			}
			c.Done.Fire()
		case *Call:
			t0 := p.Now()
			if c.Duration > 0 {
				p.Sleep(c.Duration)
			}
			if c.Fn != nil {
				c.Fn()
				q.dev.memEpoch++
			}
			if rec := q.dev.Env.Trace; rec != nil && c.Label != "" {
				q.dev.recordCall(rec, c, t0, p.Now())
			}
			c.Done.Fire()
		}
	}
}
