package device

import (
	"fmt"
	"strconv"
	"strings"

	"fluidicl/internal/sim"
)

// Link describes one device's host interconnect inside a Topology. Zero
// Latency/BytesPerSec mean "use the device config's built-in link model".
// Links with the same non-empty Bus name share a single contention domain: a
// transfer on any of them occupies the bus for its whole duration, so
// concurrent transfers on sibling devices serialize (a PCIe switch or shared
// front-side bus). An empty Bus is a dedicated point-to-point link, which
// contends only with the device's own traffic — the behavior every
// pre-topology simulation had.
type Link struct {
	Latency     float64 // seconds; 0 = keep Config.Link.LatencySec
	BytesPerSec float64 // 0 = keep Config.Link.BytesPerSec
	Bus         string  // shared contention domain name; "" = point-to-point
}

// Topology is an N-device machine: a device set plus the interconnect graph
// linking every device to the host root. Links is parallel to Devices; a
// short Links slice is padded with zero-value (dedicated, config-default)
// links.
type Topology struct {
	Name    string
	Devices []Config
	Links   []Link
}

// link returns the i-th link spec, defaulting to a dedicated link.
func (t Topology) link(i int) Link {
	if i < len(t.Links) {
		return t.Links[i]
	}
	return Link{}
}

// Pair reports whether the topology is the degenerate two-device machine the
// FluidiCL twin-execution protocol was built for: exactly one CPU followed by
// one GPU, both on dedicated config-default links. Such topologies run
// through the original twin path so their results stay bit-identical.
func (t Topology) Pair() (cpu, gpu Config, ok bool) {
	if len(t.Devices) != 2 || t.Devices[0].Kind != CPU || t.Devices[1].Kind != GPU {
		return Config{}, Config{}, false
	}
	for i := range t.Devices {
		if l := t.link(i); l.Bus != "" || l.Latency != 0 || l.BytesPerSec != 0 {
			return Config{}, Config{}, false
		}
	}
	return t.Devices[0], t.Devices[1], true
}

// Build constructs the topology's devices in env, in declaration order (the
// order fixes meter indices and trace track ids, keeping runs deterministic).
// Devices naming a shared bus receive one sim.Resource per bus name.
func (t Topology) Build(env *sim.Env) []*Device {
	buses := map[string]*sim.Resource{}
	devs := make([]*Device, len(t.Devices))
	for i, cfg := range t.Devices {
		l := t.link(i)
		if l.Latency != 0 {
			cfg.Link.LatencySec = l.Latency
		}
		if l.BytesPerSec != 0 {
			cfg.Link.BytesPerSec = l.BytesPerSec
		}
		var bus *sim.Resource
		if l.Bus != "" {
			if buses[l.Bus] == nil {
				buses[l.Bus] = sim.NewResource(env, 1)
			}
			bus = buses[l.Bus]
		}
		devs[i] = NewOnBus(env, cfg, bus)
	}
	return devs
}

// String returns the topology's parse spelling (or a derived description).
func (t Topology) String() string {
	if t.Name != "" {
		return t.Name
	}
	parts := make([]string, len(t.Devices))
	for i, d := range t.Devices {
		parts[i] = strings.ToLower(d.Kind.String())
	}
	return strings.Join(parts, "+")
}

// topoKinds maps spec kind names to device model constructors.
var topoKinds = map[string]func() Config{
	"cpu":    XeonW3550,
	"gpu":    TeslaC2070,
	"gt440":  GT440,
	"bigcpu": XeonDual,
}

// ParseTopology parses a topology spec of the form
//
//	term("+"term)* ["-bus"]      term = [count]kind
//
// where kind is one of cpu (Xeon W3550), gpu (Tesla C2070), gt440 (GeForce
// GT 440) or bigcpu (2x Xeon X5570). Examples: "cpu+gpu" (the paper's
// machine), "2cpu+2gpu" (dual-socket host with two GPUs on dedicated PCIe
// links), "4gpu-bus" (four GPUs behind one shared PCIe switch). The "-bus"
// suffix puts every device link on a single shared contention domain;
// without it each device gets a dedicated point-to-point link.
//
// When a kind appears more than once, its devices get " #i" name suffixes so
// meters and trace tracks stay distinguishable; a kind appearing once keeps
// its plain model name, which keeps "cpu+gpu" byte-identical to the
// pre-topology machine.
func ParseTopology(spec string) (Topology, error) {
	t := Topology{Name: spec}
	s := strings.TrimSpace(strings.ToLower(spec))
	bus := ""
	if strings.HasSuffix(s, "-bus") {
		s = strings.TrimSuffix(s, "-bus")
		bus = "bus0"
	}
	if s == "" {
		return Topology{}, fmt.Errorf("device: empty topology spec %q", spec)
	}
	type term struct {
		count int
		make  func() Config
		kind  string
	}
	var terms []term
	kindTotal := map[string]int{}
	for _, raw := range strings.Split(s, "+") {
		raw = strings.TrimSpace(raw)
		i := 0
		for i < len(raw) && raw[i] >= '0' && raw[i] <= '9' {
			i++
		}
		count := 1
		if i > 0 {
			n, err := strconv.Atoi(raw[:i])
			if err != nil || n < 1 {
				return Topology{}, fmt.Errorf("device: bad device count in topology term %q", raw)
			}
			count = n
		}
		kind := raw[i:]
		mk, ok := topoKinds[kind]
		if !ok {
			return Topology{}, fmt.Errorf("device: unknown device kind %q in topology %q (have cpu, gpu, gt440, bigcpu)", kind, spec)
		}
		terms = append(terms, term{count: count, make: mk, kind: kind})
		kindTotal[kind] += count
	}
	kindSeen := map[string]int{}
	for _, tm := range terms {
		for j := 0; j < tm.count; j++ {
			cfg := tm.make()
			if kindTotal[tm.kind] > 1 {
				cfg.Name = fmt.Sprintf("%s #%d", cfg.Name, kindSeen[tm.kind])
			}
			kindSeen[tm.kind]++
			t.Devices = append(t.Devices, cfg)
			t.Links = append(t.Links, Link{Bus: bus})
		}
	}
	if len(t.Devices) == 0 {
		return Topology{}, fmt.Errorf("device: topology %q has no devices", spec)
	}
	return t, nil
}

// MustParseTopology is ParseTopology for known-good specs.
func MustParseTopology(spec string) Topology {
	t, err := ParseTopology(spec)
	if err != nil {
		panic(err)
	}
	return t
}
