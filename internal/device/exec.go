package device

import (
	"math"

	"fluidicl/internal/sim"
	"fluidicl/internal/vm"
)

// inflightWG tracks one work-group currently executing on a compute unit.
type inflightWG struct {
	fgid  int
	cu    int
	start sim.Time
	end   sim.Time
	undo  *vm.UndoLog
	stats vm.Stats
}

// runLaunch executes a kernel launch work-group by work-group, distributing
// groups across compute units greedily (lowest free time first), honouring
// FluidiCL's abort semantics:
//
//   - Before a work-group starts, the entry abort check consults the
//     CPU-completion status that has arrived by that virtual instant; a
//     completed group is skipped for SkipCost.
//   - With in-loop checks (Launch.MidAbort), a running work-group whose
//     flattened ID becomes CPU-complete mid-execution aborts AbortNotice
//     after the status lands, and its stores are rolled back (partial
//     writes are legal per the paper — the merge step overwrites them —
//     but rolling back keeps the simulated memory identical to a machine
//     where the aborted group never committed its tail writes).
//
// The executor reacts to status arrivals promptly by waiting on the abort
// query's Changed event rather than sleeping blindly.
func (d *Device) runLaunch(p *sim.Proc, l *Launch) {
	res := l.Result
	res.Started = true
	n := l.ND.LaunchGroups()
	if n == 0 {
		return
	}
	p.Sleep(d.Cfg.KernelLaunchOverhead)

	// CPU work-group splitting (§6.3): with fewer groups than hardware
	// threads and a splittable kernel, each group's work-items spread over
	// the idle threads.
	split := 1
	slots := d.Cfg.ComputeUnits
	if l.Split && d.Cfg.Kind == CPU && n < d.Cfg.ComputeUnits &&
		!l.Kernel.HasBarrier && len(l.Kernel.LocalArrs) == 0 {
		split = d.Cfg.ComputeUnits / n
		if split < 1 {
			split = 1
		}
		slots = n
	}

	// GPU occupancy: each compute unit interleaves several resident
	// work-groups, each progressing at 1/occupancy rate. Aggregate
	// throughput is unchanged, but many more work-groups are in flight —
	// which is what makes in-loop abort checks (§6.4) worthwhile.
	occupancy := d.Cfg.Occupancy
	if occupancy < 1 {
		occupancy = 1
	}
	if d.Cfg.Kind == GPU && occupancy > 1 {
		// A launch with few work-groups does not fill the machine: only as
		// many work-groups share a compute unit as the launch provides.
		perCU := (n + d.Cfg.ComputeUnits - 1) / d.Cfg.ComputeUnits
		if perCU < occupancy {
			occupancy = perCU
		}
		if occupancy < 1 {
			occupancy = 1
		}
		slots = slots * occupancy
	} else {
		occupancy = 1
	}

	cuFree := make([]sim.Time, slots)
	for i := range cuFree {
		cuFree[i] = p.Now()
	}
	var fly []inflightWG
	next := 0

	// Host-parallel speculative execution: a worker pool interprets waves of
	// upcoming work-groups concurrently, and the loop below consumes their
	// buffered results in issue order, so every virtual time and every byte
	// of memory is identical to the sequential path. eng is nil when the
	// launch is too small to benefit, the worker knob is 1, or the argument
	// list aliases (see vm.NewLaunchEngine).
	var eng *vm.LaunchEngine
	if w := vm.Workers(); w > 1 && n >= 4 {
		eng, _ = vm.NewLaunchEngine(l.Kernel, l.ND, l.Args, vm.ExecOpts{Backend: l.Backend}, w, d.MemEpoch)
	}
	defer eng.Release()
	argsChecked := eng != nil

	settle := func() {
		now := p.Now()
		kept := fly[:0]
		for _, f := range fly {
			if l.Abort != nil && l.MidAbort {
				if u, ok := l.Abort.DoneSince(f.fgid, f.start); ok && u+d.Cfg.AbortNotice < f.end {
					// Aborted mid-flight: CU freed early, stores undone.
					if f.undo != nil {
						if eng != nil {
							eng.NoteUndo(f.undo)
						}
						f.undo.Rollback()
					}
					at := u + d.Cfg.AbortNotice
					if cuFree[f.cu] > at {
						cuFree[f.cu] = at
					}
					res.Aborted++
					if rec := d.Env.Trace; rec != nil {
						d.recordAbort(rec, f.fgid, at)
					}
					continue
				}
			}
			if f.end <= now {
				res.Stats.Add(f.stats)
				res.Executed++
				continue
			}
			kept = append(kept, f)
		}
		fly = kept
	}

	for {
		settle()
		if next >= n && len(fly) == 0 {
			return
		}
		// Earliest time anything changes without external input.
		now := p.Now()
		var target sim.Time = math.MaxFloat64
		if next < n {
			for _, t := range cuFree {
				if t < target {
					target = t
				}
			}
		} else {
			for _, f := range fly {
				if f.end < target {
					target = f.end
				}
			}
		}
		if target > now {
			var changed *sim.Event
			if l.Abort != nil && l.MidAbort {
				changed = l.Abort.Changed()
			}
			if changed != nil {
				p.WaitUntil(changed, target)
			} else {
				p.Sleep(target - now)
			}
			continue
		}
		if next >= n {
			// Only waiting for in-flight groups; loop back to settle.
			continue
		}
		// A compute unit is free now: issue the next work-group on it.
		cu := 0
		for i, t := range cuFree {
			if t < cuFree[cu] {
				cu = i
			}
		}
		group := l.ND.GroupAt(next)
		fgid := l.ND.FlatGroupID(group)
		idx := next
		next++
		if l.Abort != nil && l.Abort.DoneAt(fgid, now) {
			cuFree[cu] = now + d.Cfg.SkipCost
			res.Skipped++
			continue
		}
		if !argsChecked {
			// Validate lazily, at the first group that actually executes —
			// exactly where the sequential path first validated — so a launch
			// whose every group is entry-skipped still reports no error.
			if err := l.Kernel.CheckArgs(l.Args); err != nil {
				res.Err = err
				return
			}
			argsChecked = true
		}
		var undo *vm.UndoLog
		if l.Abort != nil && l.MidAbort {
			undo = &vm.UndoLog{}
		}
		var st vm.Stats
		var err error
		if eng != nil {
			st, err = eng.Result(idx)
			// Commit before the error check: the sequential path leaves a
			// failing group's stores up to the fault applied in place, and
			// the deferred log holds exactly those.
			eng.Commit(idx, undo)
		} else {
			opts := vm.ExecOpts{Undo: undo, ArgsChecked: true, Backend: l.Backend}
			st, err = l.Kernel.ExecWorkGroup(l.ND, group, l.Args, opts)
		}
		if err != nil {
			res.Err = err
			return
		}
		dur := d.Cfg.WGTime(st, split) * float64(occupancy)
		fly = append(fly, inflightWG{
			fgid: fgid, cu: cu,
			start: now, end: now + dur,
			undo: undo, stats: st,
		})
		cuFree[cu] = now + dur
	}
}
