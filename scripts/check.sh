#!/bin/sh
# CI gate: build, vet, race-clean tests (includes the determinism regression
# tests), plus a one-iteration benchmark smoke. Mirrors `make check` for
# environments without make.
set -eux

go build ./...
go vet ./...
go test -race ./...
go test -bench 'BenchmarkOverall' -benchtime=1x -run '^$' .
