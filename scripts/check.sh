#!/bin/sh
# Full CI gate: the fast checks (`make check`: formatting, build, vet,
# tests, kernel lint, bench smoke) plus the race-detector suite
# (`make race`). Delegates to make so this script and the Makefile cannot
# drift; the inline fallback below exists only for environments without
# make.
set -eu

cd "$(dirname "$0")/.."

if command -v make >/dev/null 2>&1; then
    exec make check race
fi

# ---- inline fallback (no make available) ----
set -x

fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
    echo "gofmt: needs formatting:" >&2
    echo "$fmt" >&2
    exit 1
fi

go build ./...
go vet ./...
# The harness package replays every experiment; it can exceed go test's
# default 600s per-package timeout, and far exceeds it under the race
# detector.
go test -timeout 1800s ./...
go test -race -timeout 1800s ./...

# Lint every shipped kernel: the built-in Polybench set, the injected merge
# kernel, and the example kernels on disk.
go run ./cmd/fluidilint -builtin examples/quickstart/kernel.cl

go test -bench 'BenchmarkOverall' -benchtime=1x -run '^$' .
