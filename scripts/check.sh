#!/bin/sh
# CI gate: formatting, build, vet, race-clean tests (includes the
# determinism regression tests), kernel lint, plus a one-iteration
# benchmark smoke. Mirrors `make check` for environments without make.
set -eux

fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
    echo "gofmt: needs formatting:" >&2
    echo "$fmt" >&2
    exit 1
fi

go build ./...
go vet ./...
# The harness package replays every experiment; under the race detector it
# far exceeds go test's default 600s per-package timeout.
go test -race -timeout 1800s ./...

# Lint every shipped kernel: the built-in Polybench set, the injected merge
# kernel, and the example kernels on disk.
go run ./cmd/fluidilint -builtin examples/quickstart/kernel.cl

go test -bench 'BenchmarkOverall' -benchtime=1x -run '^$' .
