#!/bin/sh
# Bench-regression gate: re-run the quick-scale experiment suite and compare
# each experiment's wall clock against the committed BENCH_05.json baseline
# (quick-scale suite at the wg backend with region fusion on, its default:
# like-with-like). BENCH_01.json through BENCH_04.json are the historical
# interpreter-, closure-, pre-planner-wg- and pre-fusion-era baselines.
# Exits non-zero when any experiment regressed past the tolerance.
#
#   BENCH_GATE_TOL_PCT   allowed regression, percent (default 25)
#   BENCH_GATE_MIN_SEC   ignore experiments with baseline below this (default 0.05)
#
# Wall clock is host time and therefore noisy; the default tolerance is wide
# and the CI job running this is non-blocking. Regenerate the baseline on an
# intentional perf change with `make bench-baseline`.
#
# Per-experiment verdicts are also written as JSON to $BENCH_GATE_JSON
# (default benchgate.json in the repo root) so CI can upload them as an
# artifact; benchgate itself appends a markdown table to
# $GITHUB_STEP_SUMMARY when that is set.
set -eu

cd "$(dirname "$0")/.."

tol="${BENCH_GATE_TOL_PCT:-25}"
min="${BENCH_GATE_MIN_SEC:-0.05}"
jsonout="${BENCH_GATE_JSON:-benchgate.json}"

tmp="$(mktemp -t benchgate.XXXXXX.json)"
trap 'rm -f "$tmp"' EXIT

echo "bench_gate: running quick-scale suite (tolerance ${tol}%)..."
go run ./cmd/fluidibench -quick -backend=wg -jsonout "$tmp" all >/dev/null

go run ./cmd/benchgate -baseline BENCH_05.json -current "$tmp" -tol "$tol" -min "$min" -jsonout "$jsonout"
